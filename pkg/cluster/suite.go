package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/experiments/engine"
	"samielsq/pkg/client"
)

// Progress reports one completed remote simulation to a RunSpecs
// observer.
type Progress struct {
	Replica     string // replica that delivered the run
	Key         string // canonical spec key
	Done, Total int
}

// shardChunk caps how many specs one POST /v1/suite request carries.
// Chunking keeps every request proportionate to the server's single
// -request-timeout (a whole multi-hundred-run shard in one request
// would 504 mid-sweep at large budgets), bounds how much a severed
// stream loses, and stays far under the server's per-request spec cap.
// A var so tests can exercise multi-chunk shards cheaply.
var shardChunk = 64

// RunSpecs executes an explicit spec set across the cluster: each spec
// is assigned to the rendezvous owner of its canonical key, every
// replica receives its shard as a sequence of bounded POST /v1/suite
// requests, and results stream back as the simulations complete. A
// replica that fails mid-shard is quarantined and its remaining specs
// re-shard onto the survivors — completed runs are never re-requested
// — so a sweep survives losing replicas as long as one stays up. A
// merely saturated replica (429) is not quarantined: its Retry-After
// hint is honored before the work is re-planned. onProgress, when
// non-nil, observes every completed run from a single goroutine.
// Results are keyed by canonical spec key.
func (c *ShardedClient) RunSpecs(ctx context.Context, specs []experiments.RunSpec, onProgress func(Progress)) (map[string]client.RunResponse, error) {
	pending := make(map[string]experiments.RunSpec, len(specs))
	for _, s := range specs {
		pending[experiments.Key(s)] = s
	}
	total := len(pending)
	results := make(map[string]client.RunResponse, total)
	var mu sync.Mutex // guards pending + results + onProgress

	// Stall accounting: rounds that fail for cause (dead replicas) get
	// a short budget; rounds shed with 429 + Retry-After are the
	// server keeping its promise, so they get a longer one and wait
	// out the hint instead of a fixed pause.
	const maxStalledRounds, maxThrottledRounds = 3, 20
	stalled, throttledRounds := 0, 0
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Plan this round's shards: every pending spec goes to its
		// highest-ranked usable replica. Shards are disjoint, so in the
		// failure-free case each distinct spec executes exactly once
		// cluster-wide.
		shards := map[string][]client.RunRequest{}
		mu.Lock()
		keys := make([]string, 0, len(pending))
		for key := range pending {
			keys = append(keys, key)
		}
		sort.Strings(keys) // deterministic shard bodies
		for _, key := range keys {
			rep := c.healthyCandidate(ctx, key)
			shards[rep] = append(shards[rep], client.RequestFor(pending[key]))
		}
		before := len(pending)
		mu.Unlock()

		var wg sync.WaitGroup
		errsMu := sync.Mutex{}
		var lastErr, fatalErr, throttleErr error
		for rep, shard := range shards {
			wg.Add(1)
			go func(rep string, shard []client.RunRequest) {
				defer wg.Done()
				onEvent := func(ev client.SuiteEvent) {
					if ev.Type != "run" || ev.Run == nil {
						return
					}
					mu.Lock()
					defer mu.Unlock()
					key := ev.Run.Key
					if _, dup := results[key]; dup {
						return
					}
					if _, want := pending[key]; !want {
						return
					}
					results[key] = *ev.Run
					delete(pending, key)
					if onProgress != nil {
						onProgress(Progress{Replica: rep, Key: key, Done: len(results), Total: total})
					}
				}
				peers := c.peersFor(rep)
				for start := 0; start < len(shard); start += shardChunk {
					end := min(start+shardChunk, len(shard))
					_, err := c.clients[rep].Suite(ctx, client.SuiteRequest{Specs: shard[start:end], Peers: peers}, onEvent)
					if err == nil {
						continue
					}
					if ctx.Err() != nil {
						return
					}
					errsMu.Lock()
					switch {
					case permanent(err):
						// The chunk itself was rejected (4xx): no replica
						// will answer differently, so fail the sweep fast
						// instead of quarantining healthy replicas and
						// re-sending a doomed request.
						if fatalErr == nil {
							fatalErr = fmt.Errorf("%s rejected the shard: %w", rep, err)
						}
					case client.IsThrottled(err):
						// Saturated, not dead: keep the replica in the
						// ring and let the round honor its hint.
						throttleErr = err
					default:
						// The chunk died mid-stream: quarantine the
						// replica and let the next round re-shard
						// whatever it had not delivered.
						c.markDown(rep)
						lastErr = fmt.Errorf("%s: %w", rep, err)
					}
					errsMu.Unlock()
					return
				}
			}(rep, shard)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if fatalErr != nil {
			return nil, fatalErr
		}

		mu.Lock()
		remaining := len(pending)
		mu.Unlock()
		switch {
		case remaining < before:
			stalled, throttledRounds = 0, 0
		case throttleErr != nil:
			throttledRounds++
			if throttledRounds >= maxThrottledRounds {
				return nil, fmt.Errorf("cluster: sweep throttled for %d rounds with %d of %d specs undone: %w",
					throttledRounds, remaining, total, throttleErr)
			}
			// Wait out the server's own backoff hint (capped), exactly
			// like the single-request path.
			if err := c.backoff(ctx, throttleErr); err != nil {
				return nil, err
			}
		default:
			stalled++
			if stalled >= maxStalledRounds {
				if lastErr == nil {
					// Every chunk request succeeded yet nothing it
					// streamed matched a pending key: the replicas are
					// computing canonical spec keys differently from
					// this coordinator (mixed-version deployment — the
					// key covers the full normalized spec, including
					// the CPU configuration).
					return nil, fmt.Errorf("cluster: sweep stalled with %d of %d specs undone: replicas answered but delivered no pending keys (coordinator/replica version skew?)", remaining, total)
				}
				return nil, fmt.Errorf("cluster: sweep stalled with %d of %d specs undone: %w", remaining, total, lastErr)
			}
			// Give quarantines a moment to clear before re-sharding the
			// same work.
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return results, nil
}

// peersFor returns the replica set minus the target — the sibling
// list a shard request carries so the target can warm its tier-2
// peer-fetch store from the rest of the fleet (e.g. after a rebalance
// moved keys it never executed). Nil for a single-replica ring: a
// replica with no siblings has nothing to adopt, and an empty push
// must not clear an operator's static -peers configuration.
func (c *ShardedClient) peersFor(rep string) []string {
	all := c.ring.Replicas()
	peers := make([]string, 0, len(all)-1)
	for _, r := range all {
		if r != rep {
			peers = append(peers, r)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	return peers
}

// Suite regenerates the paper's full evaluation by fanning the suite
// spec set across the cluster and reassembling it locally: every
// remote result is offered into a fresh local batch, and the standard
// Suite harness then renders entirely from cache hits — byte-identical
// to the single-node RunSuite output. The run-accounting line reports
// the cluster-wide work: the distinct simulations the sweep needed
// (executed remotely, exactly once in the failure-free case) against
// the same request pattern the single-node harness issues.
func (c *ShardedClient) Suite(ctx context.Context, benchmarks []string, insts uint64, onProgress func(Progress)) (experiments.SuiteResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = experiments.Benchmarks()
	}
	specs := experiments.SuiteSpecs(benchmarks, insts)
	local, err := c.assemble(ctx, specs, onProgress)
	if err != nil {
		return experiments.SuiteResult{}, err
	}
	res := local.Suite(benchmarks, insts)
	if err := planCovered(local); err != nil {
		return experiments.SuiteResult{}, err
	}
	st := res.Runs
	res.Runs = engine.Stats{
		Requests: st.Requests,
		Executed: int64(len(specs)),
		Hits:     st.Requests - int64(len(specs)),
	}
	return res, nil
}

// planCovered asserts the shard plan covered every simulation the
// local rendering pass requested. The local batch exists to serve the
// harnesses from offered remote results; if it executed anything
// itself, the spec enumeration drifted from a harness and the cluster
// was silently bypassed for those runs — a programming bug that must
// surface loudly (the rendered output would still be correct, which is
// exactly why nothing else would ever notice).
func planCovered(local *experiments.Batch) error {
	if ex := local.Stats().Executed; ex > 0 {
		return fmt.Errorf("cluster: %d simulations ran locally during reassembly: the shard plan (SuiteSpecs/ScenarioSpecs) no longer covers the harnesses", ex)
	}
	return nil
}

// Scenario evaluates a registered sweep across the cluster, sharding
// its cells by canonical key and reassembling the result locally,
// byte-identical to the library harness.
func (c *ShardedClient) Scenario(ctx context.Context, name string, benchmarks []string, insts uint64, onProgress func(Progress)) (experiments.ScenarioResult, error) {
	specs, rows, err := experiments.ScenarioSpecs(name, benchmarks, insts)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	local, err := c.assemble(ctx, specs, onProgress)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	res, err := local.Scenario(name, rows, insts)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	if err := planCovered(local); err != nil {
		return experiments.ScenarioResult{}, err
	}
	return res, nil
}

// assemble fans the specs out and returns a local batch warmed with
// every collected result, ready to render any harness over them as
// pure cache hits.
func (c *ShardedClient) assemble(ctx context.Context, specs []experiments.RunSpec, onProgress func(Progress)) (*experiments.Batch, error) {
	byKey := make(map[string]experiments.RunSpec, len(specs))
	for _, s := range specs {
		byKey[experiments.Key(s)] = s
	}
	results, err := c.RunSpecs(ctx, specs, onProgress)
	if err != nil {
		return nil, err
	}
	local := experiments.NewBatch(0)
	for key, rr := range results {
		local.Offer(byKey[key], rr.Result())
	}
	return local, nil
}
