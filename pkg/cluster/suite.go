package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/experiments/engine"
	"samielsq/internal/obs"
	"samielsq/pkg/client"
)

// Progress reports one completed remote simulation to a RunSpecs
// observer.
type Progress struct {
	Replica     string // replica that delivered the run
	Key         string // canonical spec key
	Done, Total int
}

// shardChunk caps how many specs one POST /v1/suite request carries.
// Chunking keeps every request proportionate to the server's single
// -request-timeout (a whole multi-hundred-run shard in one request
// would 504 mid-sweep at large budgets), bounds how much a severed
// stream loses, and stays far under the server's per-request spec cap.
// A var so tests can exercise multi-chunk shards cheaply.
var shardChunk = 64

// maxStreamResumes bounds how many times one replica's severed shard
// stream is resumed in place (re-requesting only undelivered specs
// from the same replica) before the replica is declared lost and its
// breaker takes the failure.
const maxStreamResumes = 4

// SweepStats is the retry/round accounting for one RunSpecs sweep —
// the diagnosable numbers behind "the sweep is slow/stalled".
type SweepStats struct {
	Rounds        int   `json:"rounds"`         // planning rounds (1 = failure-free)
	Resumes       int   `json:"resumes"`        // same-replica stream resumes
	ThrottleWaits int   `json:"throttle_waits"` // rounds spent honoring Retry-After
	RetriesUsed   int   `json:"retries_used"`   // budget consumed (resumes + re-shard rounds)
	RetryBudget   int   `json:"retry_budget"`   // configured per-sweep budget
	BreakerTrips  int64 `json:"breaker_trips"`  // breakers tripped during the sweep
}

// sweepState tracks one sweep's retry budget and statistics.
type sweepState struct {
	mu     sync.Mutex
	stats  SweepStats
	budget int
}

// spend consumes n units of the retry budget, returning false when the
// budget is exhausted.
func (s *sweepState) spend(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget < n {
		return false
	}
	s.budget -= n
	s.stats.RetriesUsed += n
	return true
}

// SweepStats returns the accounting of the most recently completed
// RunSpecs sweep (also the one behind Suite/Scenario).
func (c *ShardedClient) SweepStats() SweepStats {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	return c.lastSweep
}

// RunSpecs executes an explicit spec set across the cluster: each spec
// is assigned to the rendezvous owner of its canonical key, every
// replica receives its shard as a sequence of bounded POST /v1/suite
// requests, and results stream back as the simulations complete.
//
// A shard stream that dies mid-body (reset, truncation) is first
// resumed in place: only the undelivered specs are re-requested from
// the same replica — which has kept simulating and memoized them, so
// the resume drains as cache hits and cluster-wide Executed accounting
// stays exactly-once. Only after maxStreamResumes consecutive dead
// streams is the replica declared lost: its breaker takes the failure
// and the remaining specs re-shard onto the survivors — completed runs
// are never re-requested — so a sweep survives losing replicas as long
// as one stays up. A merely saturated replica (429) is not penalized:
// its Retry-After hint is honored (jittered) before the work is
// re-planned. Every resume and every re-shard round draws from the
// per-sweep retry budget (WithRetryBudget), so a pathological fleet
// fails loudly with accounting (SweepStats) instead of spinning.
// onProgress, when non-nil, observes every completed run from a single
// goroutine. Results are keyed by canonical spec key.
func (c *ShardedClient) RunSpecs(ctx context.Context, specs []experiments.RunSpec, onProgress func(Progress)) (map[string]client.RunResponse, error) {
	pending := make(map[string]experiments.RunSpec, len(specs))
	for _, s := range specs {
		pending[experiments.Key(s)] = s
	}
	total := len(pending)
	results := make(map[string]client.RunResponse, total)
	var mu sync.Mutex // guards pending + results + onProgress

	// Root the sweep in one trace: every shard chunk below opens a
	// child span whose context rides that chunk's Suite requests as a
	// traceparent header, so the whole multi-replica sweep reconstructs
	// as a single tree (coordinator spans locally, replica spans via
	// GET /v1/trace/{id} — see TraceSpans). With tracing disabled the
	// span is nil and every call on it is a no-op.
	ctx, sweepSpan := obs.StartSpan(ctx, "sweep")
	sweepSpan.SetAttr("specs", fmt.Sprintf("%d", total))
	defer sweepSpan.End()
	c.sweepMu.Lock()
	c.sweepTrace = ""
	if sc := sweepSpan.Context(); sc.IsValid() {
		c.sweepTrace = sc.Trace.String()
	}
	c.sweepMu.Unlock()

	sweep := &sweepState{budget: c.retryBudget}
	sweep.stats.RetryBudget = c.retryBudget
	tripsBefore, _ := c.breakers.snapshot()
	defer func() {
		trips, _ := c.breakers.snapshot()
		sweep.mu.Lock()
		sweep.stats.BreakerTrips = trips - tripsBefore
		st := sweep.stats
		sweep.mu.Unlock()
		c.sweepMu.Lock()
		c.lastSweep = st
		c.sweepMu.Unlock()
	}()

	// Stall accounting: rounds that fail for cause (dead replicas) get
	// a short budget; rounds shed with 429 + Retry-After are the
	// server keeping its promise, so they get a longer one and wait
	// out the hint instead of a fixed pause.
	const maxStalledRounds, maxThrottledRounds = 3, 20
	stalled, throttledRounds := 0, 0
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sweep.mu.Lock()
		sweep.stats.Rounds++
		firstRound := sweep.stats.Rounds == 1
		sweep.mu.Unlock()
		// Re-shard rounds (everything after the first plan) spend
		// retry budget: a sweep that keeps re-planning is retrying.
		if !firstRound && !sweep.spend(1) {
			mu.Lock()
			remaining := len(pending)
			mu.Unlock()
			return nil, fmt.Errorf("cluster: sweep retry budget (%d) exhausted with %d of %d specs undone (%s)",
				c.retryBudget, remaining, total, sweepDebug(sweep))
		}
		// Plan this round's shards: every pending spec goes to its
		// highest-ranked usable replica. Shards are disjoint, so in the
		// failure-free case each distinct spec executes exactly once
		// cluster-wide.
		type shardItem struct {
			key string
			req client.RunRequest
		}
		shards := map[string][]shardItem{}
		mu.Lock()
		keys := make([]string, 0, len(pending))
		for key := range pending {
			keys = append(keys, key)
		}
		sort.Strings(keys) // deterministic shard bodies
		for _, key := range keys {
			rep := c.healthyCandidate(ctx, key)
			shards[rep] = append(shards[rep], shardItem{key: key, req: client.RequestFor(pending[key])})
		}
		before := len(pending)
		mu.Unlock()

		var wg sync.WaitGroup
		errsMu := sync.Mutex{}
		var lastErr, fatalErr, throttleErr error
		//lint:ordered shards run concurrently per replica; launch order is immaterial and shard bodies are already key-sorted
		for rep, shard := range shards {
			wg.Add(1)
			go func(rep string, shard []shardItem) {
				defer wg.Done()
				// lastTrace remembers the server-side traceparent of the
				// most recent run event this shard's streams delivered —
				// only this goroutine's stream callbacks write it, so no
				// extra lock. When a stream dies it names the trace the
				// resume re-requests work under.
				lastTrace := ""
				onEvent := func(ev client.SuiteEvent) {
					if ev.Type != "run" || ev.Run == nil {
						return
					}
					if ev.Trace != "" {
						lastTrace = ev.Trace
					}
					mu.Lock()
					defer mu.Unlock()
					key := ev.Run.Key
					if _, dup := results[key]; dup {
						return
					}
					if _, want := pending[key]; !want {
						return
					}
					results[key] = *ev.Run
					delete(pending, key)
					if onProgress != nil {
						onProgress(Progress{Replica: rep, Key: key, Done: len(results), Total: total})
					}
				}
				// undelivered filters a chunk down to the specs whose
				// results have not yet arrived on any stream.
				undelivered := func(chunk []shardItem) []client.RunRequest {
					mu.Lock()
					defer mu.Unlock()
					reqs := make([]client.RunRequest, 0, len(chunk))
					for _, it := range chunk {
						if _, want := pending[it.key]; want {
							reqs = append(reqs, it.req)
						}
					}
					return reqs
				}
				peers := c.peersFor(rep)
				resumes := 0
				for start := 0; start < len(shard); start += shardChunk {
					end := min(start+shardChunk, len(shard))
					chunk := shard[start:end]
					// Each chunk gets a child span of the sweep root; its
					// context rides the chunk's Suite requests (including
					// resumes, which stay under the same chunk span) as
					// the traceparent header.
					chunkCtx, chunkSpan := obs.StartSpan(ctx, "sweep.chunk")
					chunkSpan.SetAttr("replica", rep)
					chunkSpan.SetAttr("specs", fmt.Sprintf("%d", len(chunk)))
					chunkDone := func() bool {
						defer chunkSpan.End()
						for {
							reqs := undelivered(chunk)
							if len(reqs) == 0 {
								return true
							}
							_, err := c.clients[rep].Suite(chunkCtx, client.SuiteRequest{Specs: reqs, Peers: peers}, onEvent)
							if err == nil {
								return true
							}
							if ctx.Err() != nil {
								return false
							}
							if permanent(err) {
								// The chunk itself was rejected (4xx): no
								// replica will answer differently, so fail the
								// sweep fast instead of penalizing healthy
								// replicas and re-sending a doomed request.
								errsMu.Lock()
								if fatalErr == nil {
									fatalErr = fmt.Errorf("%s rejected the shard: %w", rep, err)
								}
								errsMu.Unlock()
								return false
							}
							if client.IsThrottled(err) {
								// Saturated, not dead: keep the replica in the
								// ring and let the round honor its hint.
								errsMu.Lock()
								throttleErr = err
								errsMu.Unlock()
								return false
							}
							// The stream died mid-body. Resume against the SAME
							// replica first: it has kept simulating the chunk and
							// memoized the results, so the re-request drains from
							// its cache without re-executing anything — moving
							// the work elsewhere would double-execute it.
							if resumes < maxStreamResumes && sweep.spend(1) {
								resumes++
								sweep.mu.Lock()
								sweep.stats.Resumes++
								sweep.mu.Unlock()
								// Name the trace the re-requested specs belong
								// to, so a truncated sweep is greppable from
								// the coordinator log straight into the trace
								// view.
								tp := lastTrace
								if tp == "" {
									tp = chunkSpan.TraceParent()
								}
								c.log.Info("shard stream died, resuming in place",
									"replica", rep, "undelivered", len(reqs),
									"resume", resumes, "trace", tp, "err", err)
								if werr := c.bo.Sleep(ctx, rep, resumes-1, err); werr != nil {
									return false
								}
								continue
							}
							// Out of resumes (or budget): the replica is lost.
							// Its breaker takes the failure and the next round
							// re-shards whatever it had not delivered.
							c.markDown(rep)
							c.log.Warn("replica lost mid-sweep, re-sharding its work",
								"replica", rep, "undelivered", len(reqs), "err", err)
							errsMu.Lock()
							lastErr = fmt.Errorf("%s: %w", rep, err)
							errsMu.Unlock()
							return false
						}
					}()
					if !chunkDone {
						return
					}
				}
			}(rep, shard)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if fatalErr != nil {
			return nil, fatalErr
		}

		mu.Lock()
		remaining := len(pending)
		mu.Unlock()
		switch {
		case remaining == 0:
		case remaining < before:
			stalled, throttledRounds = 0, 0
		case throttleErr != nil:
			throttledRounds++
			sweep.mu.Lock()
			sweep.stats.ThrottleWaits++
			sweep.mu.Unlock()
			if throttledRounds >= maxThrottledRounds {
				return nil, fmt.Errorf("cluster: sweep throttled for %d rounds with %d of %d specs undone (%s): %w",
					throttledRounds, remaining, total, sweepDebug(sweep), throttleErr)
			}
			// Wait out the server's own backoff hint (capped, jittered),
			// exactly like the single-request path.
			if err := c.backoff(ctx, "sweep", throttledRounds-1, throttleErr); err != nil {
				return nil, err
			}
		default:
			stalled++
			if stalled >= maxStalledRounds {
				if lastErr == nil {
					// Every chunk request succeeded yet nothing it
					// streamed matched a pending key: the replicas are
					// computing canonical spec keys differently from
					// this coordinator (mixed-version deployment — the
					// key covers the full normalized spec, including
					// the CPU configuration).
					return nil, fmt.Errorf("cluster: sweep stalled with %d of %d specs undone (%s): replicas answered but delivered no pending keys (coordinator/replica version skew?)", remaining, total, sweepDebug(sweep))
				}
				return nil, fmt.Errorf("cluster: sweep stalled with %d of %d specs undone (%s): %w", remaining, total, sweepDebug(sweep), lastErr)
			}
			// Give open breakers a moment toward half-open before
			// re-sharding the same work.
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return results, nil
}

// sweepDebug renders a sweep's accounting for error messages, so a
// failed sweep reports what it spent instead of failing opaquely.
func sweepDebug(s *sweepState) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("rounds=%d resumes=%d throttle_waits=%d retries_used=%d/%d",
		s.stats.Rounds, s.stats.Resumes, s.stats.ThrottleWaits, s.stats.RetriesUsed, s.stats.RetryBudget)
}

// peersFor returns the replica set minus the target — the sibling
// list a shard request carries so the target can warm its tier-2
// peer-fetch store from the rest of the fleet (e.g. after a rebalance
// moved keys it never executed). Nil for a single-replica ring: a
// replica with no siblings has nothing to adopt, and an empty push
// must not clear an operator's static -peers configuration.
func (c *ShardedClient) peersFor(rep string) []string {
	all := c.ring.Replicas()
	peers := make([]string, 0, len(all)-1)
	for _, r := range all {
		if r != rep {
			peers = append(peers, r)
		}
	}
	if len(peers) == 0 {
		return nil
	}
	return peers
}

// Suite regenerates the paper's full evaluation by fanning the suite
// spec set across the cluster and reassembling it locally: every
// remote result is offered into a fresh local batch, and the standard
// Suite harness then renders entirely from cache hits — byte-identical
// to the single-node RunSuite output. The run-accounting line reports
// the cluster-wide work: the distinct simulations the sweep needed
// (executed remotely, exactly once in the failure-free case) against
// the same request pattern the single-node harness issues.
func (c *ShardedClient) Suite(ctx context.Context, benchmarks []string, insts uint64, onProgress func(Progress)) (experiments.SuiteResult, error) {
	if len(benchmarks) == 0 {
		benchmarks = experiments.Benchmarks()
	}
	specs := experiments.SuiteSpecs(benchmarks, insts)
	local, err := c.assemble(ctx, specs, onProgress)
	if err != nil {
		return experiments.SuiteResult{}, err
	}
	res := local.Suite(benchmarks, insts)
	if err := planCovered(local); err != nil {
		return experiments.SuiteResult{}, err
	}
	st := res.Runs
	res.Runs = engine.Stats{
		Requests: st.Requests,
		Executed: int64(len(specs)),
		Hits:     st.Requests - int64(len(specs)),
	}
	return res, nil
}

// planCovered asserts the shard plan covered every simulation the
// local rendering pass requested. The local batch exists to serve the
// harnesses from offered remote results; if it executed anything
// itself, the spec enumeration drifted from a harness and the cluster
// was silently bypassed for those runs — a programming bug that must
// surface loudly (the rendered output would still be correct, which is
// exactly why nothing else would ever notice).
func planCovered(local *experiments.Batch) error {
	if ex := local.Stats().Executed; ex > 0 {
		return fmt.Errorf("cluster: %d simulations ran locally during reassembly: the shard plan (SuiteSpecs/ScenarioSpecs) no longer covers the harnesses", ex)
	}
	return nil
}

// Scenario evaluates a registered sweep across the cluster, sharding
// its cells by canonical key and reassembling the result locally,
// byte-identical to the library harness.
func (c *ShardedClient) Scenario(ctx context.Context, name string, benchmarks []string, insts uint64, onProgress func(Progress)) (experiments.ScenarioResult, error) {
	specs, rows, err := experiments.ScenarioSpecs(name, benchmarks, insts)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	local, err := c.assemble(ctx, specs, onProgress)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	res, err := local.Scenario(name, rows, insts)
	if err != nil {
		return experiments.ScenarioResult{}, err
	}
	if err := planCovered(local); err != nil {
		return experiments.ScenarioResult{}, err
	}
	return res, nil
}

// assemble fans the specs out and returns a local batch warmed with
// every collected result, ready to render any harness over them as
// pure cache hits.
func (c *ShardedClient) assemble(ctx context.Context, specs []experiments.RunSpec, onProgress func(Progress)) (*experiments.Batch, error) {
	byKey := make(map[string]experiments.RunSpec, len(specs))
	for _, s := range specs {
		byKey[experiments.Key(s)] = s
	}
	results, err := c.RunSpecs(ctx, specs, onProgress)
	if err != nil {
		return nil, err
	}
	local := experiments.NewBatch(0)
	//lint:ordered each key installs its own result; Offer is per-key with no cross-key state
	for key, rr := range results {
		local.Offer(byKey[key], rr.Result())
	}
	return local, nil
}
