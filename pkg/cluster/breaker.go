package cluster

import (
	"sync"
	"time"
)

// breakerSet is the per-replica circuit breaker shared by the fabric's
// routing layers, replacing the old fixed quarantine timers with the
// classic three-state policy:
//
//   - closed: requests flow; consecutive failures are counted.
//   - open: `threshold` consecutive failures trip the breaker; the
//     replica is skipped for `cooldown`.
//   - half-open: after the cooldown one probe is allowed through
//     (callers see probeFirst=true and health-check before committing
//     real work). Success closes the breaker; failure re-opens it for
//     another cooldown.
//
// A threshold above 1 keeps one flaky exchange — a chaos-injected
// reset, a single dropped connection — from exiling a healthy replica,
// while a genuinely dead one still trips within two requests.
type breakerSet struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to trip; >= 1
	cooldown  time.Duration // open duration before the half-open probe
	m         map[string]*breakerEntry
	trips     int64 // total closed->open transitions (diagnostics)
}

type breakerEntry struct {
	fails    int       // consecutive failures since the last success
	openedAt time.Time // zero while closed
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	if threshold < 1 {
		threshold = 1
	}
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: map[string]*breakerEntry{}}
}

func (s *breakerSet) entry(rep string) *breakerEntry {
	e := s.m[rep]
	if e == nil {
		e = &breakerEntry{}
		s.m[rep] = e
	}
	return e
}

// failure records a failed exchange. Reaching the threshold trips the
// breaker; any failure while open or half-open re-arms the cooldown
// (a failed half-open probe must not readmit the replica).
func (s *breakerSet) failure(rep string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(rep)
	e.fails++
	if e.fails >= s.threshold {
		if e.openedAt.IsZero() {
			s.trips++
		}
		e.openedAt = time.Now()
	}
}

// success closes the breaker and clears the failure streak.
func (s *breakerSet) success(rep string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(rep)
	e.fails = 0
	e.openedAt = time.Time{}
}

// state reports whether the replica may carry a request (usable) and
// whether it must be health-probed first (half-open).
func (s *breakerSet) state(rep string) (usable, probeFirst bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[rep]
	if e == nil || e.openedAt.IsZero() {
		return true, false
	}
	if time.Now().After(e.openedAt.Add(s.cooldown)) {
		return true, true
	}
	return false, false
}

// reset forgets every replica's state (fleet membership changed).
func (s *breakerSet) reset() {
	s.mu.Lock()
	s.m = map[string]*breakerEntry{}
	s.mu.Unlock()
}

// snapshot reports total trips and how many breakers are open right
// now.
func (s *breakerSet) snapshot() (trips int64, open int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	//lint:ordered commutative count of open breakers
	for _, e := range s.m {
		if !e.openedAt.IsZero() && !now.After(e.openedAt.Add(s.cooldown)) {
			open++
		}
	}
	return s.trips, open
}
