package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := newBreakerSet(2, time.Hour)
	if ok, probe := b.state("r"); !ok || probe {
		t.Fatalf("fresh replica state = (%v, %v)", ok, probe)
	}
	b.failure("r")
	if ok, _ := b.state("r"); !ok {
		t.Fatal("one failure below the threshold tripped the breaker")
	}
	b.failure("r")
	if ok, _ := b.state("r"); ok {
		t.Fatal("two consecutive failures did not trip the breaker")
	}
	if trips, open := b.snapshot(); trips != 1 || open != 1 {
		t.Fatalf("snapshot = (%d trips, %d open), want (1, 1)", trips, open)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreakerSet(2, time.Hour)
	b.failure("r")
	b.success("r")
	b.failure("r")
	if ok, _ := b.state("r"); !ok {
		t.Fatal("interleaved successes should keep the streak below the threshold")
	}
}

func TestBreakerHalfOpenAndRecovery(t *testing.T) {
	b := newBreakerSet(1, 20*time.Millisecond)
	b.failure("r")
	if ok, _ := b.state("r"); ok {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	time.Sleep(30 * time.Millisecond)
	ok, probe := b.state("r")
	if !ok || !probe {
		t.Fatalf("after the cooldown state = (%v, %v), want half-open (true, true)", ok, probe)
	}
	// A failed half-open probe re-opens for another full cooldown.
	b.failure("r")
	if ok, _ := b.state("r"); ok {
		t.Fatal("failed half-open probe readmitted the replica")
	}
	time.Sleep(30 * time.Millisecond)
	// A successful probe closes it for good.
	b.success("r")
	if ok, probe := b.state("r"); !ok || probe {
		t.Fatalf("after recovery state = (%v, %v), want closed (true, false)", ok, probe)
	}
	if trips, open := b.snapshot(); trips != 1 || open != 0 {
		t.Fatalf("snapshot = (%d trips, %d open), want (1, 0)", trips, open)
	}
}

func TestBreakerResetForgetsState(t *testing.T) {
	b := newBreakerSet(1, time.Hour)
	b.failure("r")
	b.reset()
	if ok, probe := b.state("r"); !ok || probe {
		t.Fatalf("after reset state = (%v, %v), want closed", ok, probe)
	}
}
