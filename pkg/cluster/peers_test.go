package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/server"
	"samielsq/pkg/client"
)

func peerTestSpec() experiments.RunSpec {
	return experiments.RunSpec{Benchmark: "gzip", Insts: 5_000, Model: experiments.ModelSAMIE}
}

// TestProbeRunPermanentErrorNoQuarantine is the regression test for
// the fabric quarantining every replica it walked when a probe failed
// with a permanent 4xx: the request is the requester's fault, so it
// must fail fast — mirroring do()/RunSpecs — with every replica left
// usable.
func TestProbeRunPermanentErrorNoQuarantine(t *testing.T) {
	badRequest := func() string {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			io.WriteString(w, `{"error":"malformed key"}`)
		}))
		t.Cleanup(ts.Close)
		return ts.URL
	}
	c, err := New([]string{badRequest(), badRequest()})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, ok, err := c.ProbeRun(context.Background(), "zzz-not-a-key")
	if ok || err == nil {
		t.Fatalf("probe = ok=%v err=%v, want a permanent error", ok, err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("error %v does not surface the 400", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("permanent probe failure took %s; should fail fast", elapsed)
	}
	for _, rep := range c.Replicas() {
		if usable, _ := c.replicaState(rep); !usable {
			t.Errorf("healthy replica %s quarantined over a client error", rep)
		}
	}
}

func TestPeerFetcherFetchesFromWarmSibling(t *testing.T) {
	urlA, batchA, _ := bootReplica(t, 1)
	spec := peerTestSpec()
	want := batchA.Run(spec)
	key := experiments.Key(spec)

	p := NewPeerFetcher([]string{urlA})
	got, ok := p.Fetch(context.Background(), key)
	if !ok {
		t.Fatal("fetch missed a key the sibling holds")
	}
	if got.CPU != want.CPU || *got.Meter != *want.Meter || got.SAMIE != want.SAMIE {
		t.Errorf("peer-fetched result differs from the sibling's")
	}

	// A key nobody holds is a plain miss, not an error.
	if _, ok := p.Fetch(context.Background(), "no-such-key"); ok {
		t.Error("fetch of an unknown key reported a hit")
	}
}

func TestPeerFetcherRejectsInvalidBodies(t *testing.T) {
	spec := peerTestSpec()
	key := experiments.Key(spec)
	want := experiments.Run(spec)

	serve := func(body func(w http.ResponseWriter)) string {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			body(w)
		}))
		t.Cleanup(ts.Close)
		return ts.URL
	}
	cases := map[string]string{
		"build-stamp mismatch": serve(func(w http.ResponseWriter) {
			json.NewEncoder(w).Encode(client.RunResponse{
				Key: key, Sim: "some-other-build", CPU: want.CPU, Meter: want.Meter,
			})
		}),
		"key mismatch": serve(func(w http.ResponseWriter) {
			json.NewEncoder(w).Encode(client.RunResponse{
				Key: "different-key", Sim: experiments.SimStamp(), CPU: want.CPU, Meter: want.Meter,
			})
		}),
		"meterless": serve(func(w http.ResponseWriter) {
			json.NewEncoder(w).Encode(client.RunResponse{Key: key, Sim: experiments.SimStamp(), CPU: want.CPU})
		}),
		"corrupt": serve(func(w http.ResponseWriter) {
			io.WriteString(w, `{"key": truncated`)
		}),
	}
	for name, url := range cases {
		p := NewPeerFetcher([]string{url})
		if _, ok := p.Fetch(context.Background(), key); ok {
			t.Errorf("%s peer body accepted", name)
		}
	}
}

func TestPeerFetcherTimeoutDegradesToMiss(t *testing.T) {
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	t.Cleanup(stuck.Close)

	p := NewPeerFetcher([]string{stuck.URL}, WithPeerTimeout(50*time.Millisecond))
	start := time.Now()
	if _, ok := p.Fetch(context.Background(), "any-key"); ok {
		t.Fatal("hung peer reported a hit")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hung peer held the fetch for %s; the per-probe timeout should bound it", elapsed)
	}
	// A second consecutive timeout trips the peer's breaker (default
	// threshold 2)...
	p.Fetch(context.Background(), "another-key")
	// ...so the next miss skips the dead peer without waiting on it.
	start = time.Now()
	p.Fetch(context.Background(), "third-key")
	if elapsed := time.Since(start); elapsed > 25*time.Millisecond {
		t.Errorf("tripped peer re-probed immediately (fetch took %s)", elapsed)
	}
}

// TestColdReplicaWarmsFromPeer is the tentpole's core flow at the
// library level: a replica with an empty disk cache serves a key its
// sibling executed, installs the artifact locally, and never runs the
// simulation itself.
func TestColdReplicaWarmsFromPeer(t *testing.T) {
	urlA, batchA, _ := bootReplica(t, 1)
	spec := peerTestSpec()
	want := batchA.Run(spec)

	dir := t.TempDir()
	cold, err := experiments.NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold.SetPeerStore(NewPeerFetcher([]string{urlA}))

	got, err := cold.RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU != want.CPU || *got.Meter != *want.Meter {
		t.Errorf("peer-warmed result differs from the executing replica's")
	}
	if st := cold.Stats(); st.Executed != 0 {
		t.Errorf("cold replica executed %d simulations, want 0", st.Executed)
	}
	ss := cold.StoreStats()
	if ss.Peer.Hits != 1 || ss.PeerInstalls != 1 {
		t.Errorf("peer tier did not account the delivery: %+v", ss)
	}
	// The artifact landed on disk: a fresh batch serves it without the
	// peer.
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := experiments.NewBatchWithCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if again := reopened.Run(spec); again.CPU != want.CPU {
		t.Errorf("installed artifact does not round-trip")
	}
	if st := reopened.Stats(); st.Executed != 0 {
		t.Errorf("installed artifact re-simulated: %+v", st)
	}
}

// TestRunSpecsPushesPeerSets verifies the coordinator hands every
// replica the rest of the fleet with its shard, and a single-replica
// ring pushes nothing (an empty push must not clear static -peers
// configuration).
func TestRunSpecsPushesPeerSets(t *testing.T) {
	type capture struct {
		mu    sync.Mutex
		peers [][]string
	}
	boot := func(cap *capture) string {
		batch := experiments.NewBatch(1)
		s, err := server.New(server.Config{
			Batch:  batch,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
			PeerAdopt: func(peers []string) {
				cap.mu.Lock()
				cap.peers = append(cap.peers, peers)
				cap.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	capA, capB := &capture{}, &capture{}
	urlA, urlB := boot(capA), boot(capB)
	c, err := New([]string{urlA, urlB})
	if err != nil {
		t.Fatal(err)
	}
	specs := []experiments.RunSpec{
		{Benchmark: "gzip", Insts: 5_000, Model: experiments.ModelSAMIE},
		{Benchmark: "swim", Insts: 5_000, Model: experiments.ModelSAMIE},
		{Benchmark: "mcf", Insts: 5_000, Model: experiments.ModelSAMIE},
		{Benchmark: "ammp", Insts: 5_000, Model: experiments.ModelSAMIE},
	}
	if _, err := c.RunSpecs(context.Background(), specs, nil); err != nil {
		t.Fatal(err)
	}
	for rep, cap := range map[string]*capture{urlA: capA, urlB: capB} {
		other := urlB
		if rep == urlB {
			other = urlA
		}
		cap.mu.Lock()
		pushes := cap.peers
		cap.mu.Unlock()
		if len(pushes) == 0 {
			// Legitimate: rendezvous may have assigned this replica no
			// specs this round.
			continue
		}
		for _, push := range pushes {
			if len(push) != 1 || push[0] != other {
				t.Errorf("replica %s adopted peers %v, want [%s]", rep, push, other)
			}
		}
	}

	// Single-replica ring: no peers accompany the shard.
	capSolo := &capture{}
	solo, err := New([]string{boot(capSolo)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.RunSpecs(context.Background(), specs[:1], nil); err != nil {
		t.Fatal(err)
	}
	capSolo.mu.Lock()
	defer capSolo.mu.Unlock()
	if len(capSolo.peers) != 0 {
		t.Errorf("single-replica sweep pushed peer sets: %v", capSolo.peers)
	}
}
