package cluster

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"samielsq/internal/experiments"
	"samielsq/internal/faultinject"
	"samielsq/internal/server"
	"samielsq/pkg/client"
)

// bootChaosReplica boots a replica with fault injection enabled,
// returning its URL, batch, and server handle (for chaos accounting
// and runtime reconfiguration).
func bootChaosReplica(t *testing.T, workers int, spec string) (string, *experiments.Batch, *server.Server) {
	t.Helper()
	cspec, err := faultinject.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	batch := experiments.NewBatch(workers)
	s, err := server.New(server.Config{
		Batch:        batch,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultInsts: 5_000,
		Chaos:        cspec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, batch, s
}

// TestRunSpecsResumesTruncatedStreams is the stream-resume contract:
// with every suite stream truncated mid-body, the sweep must finish by
// re-requesting only undelivered specs from the same replica — which
// memoized the work it kept computing past the cut — so each spec
// still executes exactly once.
func TestRunSpecsResumesTruncatedStreams(t *testing.T) {
	url, batch, srv := bootChaosReplica(t, 2, "trunc=1,seed=11")
	c, err := New([]string{url},
		WithQuarantine(50*time.Millisecond),
		WithBackoffSeed(1),
		WithMaxRetryWait(50*time.Millisecond),
		WithRetryBudget(256))
	if err != nil {
		t.Fatal(err)
	}

	// Enough specs that the NDJSON body always exceeds the truncation
	// cut (drawn in [256B, 8KiB]), so the first attempt is guaranteed to
	// be severed mid-stream.
	specs := make([]experiments.RunSpec, 0, 60)
	for i := 0; i < 60; i++ {
		specs = append(specs, experiments.RunSpec{
			Benchmark: "gzip", Insts: 5_000, Model: experiments.ModelConventional,
			ConvEntries: 8 + i,
		})
	}
	results, err := c.RunSpecs(context.Background(), specs, nil)
	if err != nil {
		t.Fatalf("sweep under truncation: %v (stats %+v)", err, c.SweepStats())
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	if got := batch.Stats().Executed; got != int64(len(specs)) {
		t.Fatalf("replica executed %d simulations, want exactly %d (resume must not re-execute)", got, len(specs))
	}
	st := c.SweepStats()
	if st.Resumes == 0 {
		t.Fatalf("no stream resumes recorded under trunc=0.7: %+v (injected %+v)", st, srv.ChaosCounts())
	}
	if st.RetriesUsed == 0 || st.RetriesUsed > st.RetryBudget {
		t.Fatalf("implausible budget accounting: %+v", st)
	}
}

// TestRunSpecsRetryBudgetExhaustion: a sweep against a replica that
// can never deliver a full stream must fail with budget accounting in
// the error instead of spinning forever.
func TestRunSpecsRetryBudgetExhaustion(t *testing.T) {
	// Every response dies before the first byte: resume can never make
	// progress.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok"))
			return
		}
		calls.Add(1)
		hj := w.(http.Hijacker)
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(ts.Close)

	c, err := New([]string{ts.URL},
		WithQuarantine(10*time.Millisecond),
		WithRetryBudget(3),
		WithBackoffSeed(1),
		WithMaxRetryWait(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the per-replica client backoff so the test runs fast.
	for rep := range c.clients {
		c.clients[rep] = client.New(rep,
			client.WithBackoff(client.Backoff{Base: time.Millisecond, Cap: 5 * time.Millisecond}),
			client.WithTransportRetries(0))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err = c.RunSpecs(ctx, []experiments.RunSpec{
		{Benchmark: "gzip", Insts: 5_000, Model: experiments.ModelSAMIE},
	}, nil)
	if err == nil {
		t.Fatal("sweep against a dead-stream replica succeeded")
	}
	st := c.SweepStats()
	if st.RetriesUsed == 0 {
		t.Fatalf("budget never consumed: %+v (err %v)", st, err)
	}
	if calls.Load() == 0 {
		t.Fatal("replica never saw a suite request")
	}
}

// TestPeerFetchUnderChaos: injected peer-side truncation and resets
// must degrade to a miss — a partial body is never installed — while
// full bodies that slip through untruncated remain valid hits.
func TestPeerFetchUnderChaos(t *testing.T) {
	urlA, batchA, srv := bootChaosReplica(t, 1, "trunc=1,seed=5")
	// Warm the peer with real results under several keys.
	specs := make([]experiments.RunSpec, 0, 20)
	for i := 0; i < 20; i++ {
		specs = append(specs, experiments.RunSpec{
			Benchmark: "gzip", Insts: 5_000, Model: experiments.ModelConventional,
			ConvEntries: 8 + i,
		})
	}
	want := map[string]experiments.RunResult{}
	for _, s := range specs {
		want[experiments.Key(s)] = batchA.Run(s)
	}

	p := NewPeerFetcher([]string{urlA}, WithPeerBreakerThreshold(1000)) // keep probing through the chaos
	hits := 0
	for _, s := range specs {
		key := experiments.Key(s)
		res, ok := p.Fetch(context.Background(), key)
		if !ok {
			continue // degraded to a miss; the caller would simulate
		}
		hits++
		w := want[key]
		if res.CPU != w.CPU || *res.Meter != *w.Meter {
			t.Fatalf("peer fetch under truncation installed a wrong result for %s", key)
		}
	}
	if c := srv.ChaosCounts(); c.Truncations == 0 {
		t.Fatalf("no truncation fired across 20 probes: %+v (hits %d)", c, hits)
	}

	// Pure resets: every probe must degrade to a miss.
	urlB, batchB, _ := bootChaosReplica(t, 1, "reset=1,seed=3")
	specB := peerTestSpec()
	batchB.Run(specB)
	pb := NewPeerFetcher([]string{urlB}, WithPeerBreakerThreshold(1000))
	if _, ok := pb.Fetch(context.Background(), experiments.Key(specB)); ok {
		t.Fatal("a reset-severed probe reported a hit")
	}
}

// TestPeerFetcherBreakerTripAndRecovery: repeated transport failures
// trip the peer breaker (probes stop reaching the peer), and the
// half-open probe readmits it once it recovers.
func TestPeerFetcherBreakerTripAndRecovery(t *testing.T) {
	var dead atomic.Bool
	var reqs atomic.Int64
	backend, batch, _ := func() (http.Handler, *experiments.Batch, *server.Server) {
		batch := experiments.NewBatch(1)
		s, err := server.New(server.Config{
			Batch:        batch,
			Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
			DefaultInsts: 5_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Handler(), batch, s
	}()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		if dead.Load() {
			hj := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		backend.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	spec := peerTestSpec()
	wantRes := batch.Run(spec)
	key := experiments.Key(spec)

	p := NewPeerFetcher([]string{ts.URL}, WithPeerQuarantine(30*time.Millisecond))

	// Two consecutive transport failures trip the breaker.
	dead.Store(true)
	p.Fetch(context.Background(), key)
	p.Fetch(context.Background(), key)
	seen := reqs.Load()
	// Open breaker: the next fetch must not touch the peer at all.
	if _, ok := p.Fetch(context.Background(), key); ok {
		t.Fatal("open-breaker fetch reported a hit")
	}
	if reqs.Load() != seen {
		t.Fatal("open breaker still sent a probe to the dead peer")
	}

	// Recovery: cooldown lapses, the half-open probe finds the peer
	// healthy again, and fetches flow.
	dead.Store(false)
	time.Sleep(50 * time.Millisecond)
	res, ok := p.Fetch(context.Background(), key)
	if !ok {
		t.Fatal("half-open probe against a recovered peer missed")
	}
	if res.CPU != wantRes.CPU {
		t.Fatal("recovered peer served a wrong result")
	}
	// Breaker is closed again: no cooldown before the next hit.
	if _, ok := p.Fetch(context.Background(), key); !ok {
		t.Fatal("closed-breaker fetch missed")
	}
}
