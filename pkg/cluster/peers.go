package cluster

import (
	"context"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"samielsq/internal/experiments"
	"samielsq/pkg/client"
)

// PeerFetcher is the standard experiments.PeerStore: the tier-2
// backend that lets a replica serve keys it never executed. On a local
// miss it probes sibling replicas through GET /v1/runs/{key} in
// rendezvous weight order — after a rebalance the previous owner ranks
// highest among the peers, so the artifact is usually one probe away —
// validates each 200 body against the local simulator build stamp
// (ValidatePeerResult, the disk tier's acceptance predicate), and
// returns the first valid result for installation into the local disk
// cache. Unreachable, slow, empty-handed or build-skewed peers all
// degrade to a miss: the caller simulates, it never fails.
//
// A peer that keeps failing at the transport level trips its circuit
// breaker (the same consecutive-failure → open → half-open policy the
// coordinator applies to replicas) so a dead sibling does not tax
// every subsequent miss with a connect timeout, while one flaky probe
// — a chaos-injected reset or truncation — costs nothing. Safe for
// concurrent use; SetPeers may retarget it live.
type PeerFetcher struct {
	timeout time.Duration
	hc      *http.Client

	mu       sync.RWMutex
	ring     *Rendezvous
	clients  map[string]*client.Client
	breakers *breakerSet
}

// PeerOption customizes a PeerFetcher.
type PeerOption func(*PeerFetcher)

// WithPeerTimeout bounds one peer probe (per replica, not per fetch);
// default 3s. Zero disables the per-probe bound (the request context
// still governs).
func WithPeerTimeout(d time.Duration) PeerOption {
	return func(p *PeerFetcher) { p.timeout = d }
}

// WithPeerQuarantine sets how long a tripped peer breaker stays open
// before its half-open probe; default 15s.
func WithPeerQuarantine(d time.Duration) PeerOption {
	return func(p *PeerFetcher) { p.breakers.cooldown = d }
}

// WithPeerBreakerThreshold sets how many consecutive transport
// failures trip a peer's breaker; default 2.
func WithPeerBreakerThreshold(n int) PeerOption {
	return func(p *PeerFetcher) {
		if n >= 1 {
			p.breakers.threshold = n
		}
	}
}

// WithPeerHTTPClient substitutes the *http.Client used for probes.
func WithPeerHTTPClient(hc *http.Client) PeerOption {
	return func(p *PeerFetcher) { p.hc = hc }
}

// NewPeerFetcher builds the tier-2 backend over the sibling replica
// base URLs (this replica excluded — probing yourself is a guaranteed
// miss). An empty set is valid: every fetch misses until SetPeers
// supplies replicas (e.g. adopted from a coordinator).
func NewPeerFetcher(peers []string, opts ...PeerOption) *PeerFetcher {
	p := &PeerFetcher{
		timeout:  3 * time.Second,
		hc:       &http.Client{},
		breakers: newBreakerSet(2, 15*time.Second),
	}
	for _, o := range opts {
		o(p)
	}
	p.SetPeers(peers)
	return p
}

// The fetcher is the cluster-backed tier-2 store.
var _ experiments.PeerStore = (*PeerFetcher)(nil)

// SetPeers retargets the fetcher at a new sibling set (trimmed,
// deduplicated; order irrelevant). A no-op when the set is unchanged,
// so a coordinator may push its replica list with every shard.
func (p *PeerFetcher) SetPeers(peers []string) {
	urls := make([]string, 0, len(peers))
	for _, r := range peers {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			urls = append(urls, r)
		}
	}
	ring := NewRendezvous(urls)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ring != nil && slices.Equal(ring.Replicas(), p.ring.Replicas()) {
		return
	}
	clients := make(map[string]*client.Client, len(ring.Replicas()))
	for _, rep := range ring.Replicas() {
		clients[rep] = client.New(rep, client.WithHTTPClient(p.hc))
	}
	p.ring, p.clients = ring, clients
	p.breakers.reset()
}

// Peers returns the current sibling set, sorted.
func (p *PeerFetcher) Peers() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ring.Replicas()
}

// usable reports whether a peer's breaker admits a probe (closed or
// half-open; the probe itself is the half-open trial).
func (p *PeerFetcher) usable(rep string) bool {
	ok, _ := p.breakers.state(rep)
	return ok
}

// markDown records a transport failure; enough consecutive ones trip
// the peer's breaker.
func (p *PeerFetcher) markDown(rep string) {
	p.breakers.failure(rep)
}

// markUp closes a peer's breaker after any completed exchange.
func (p *PeerFetcher) markUp(rep string) {
	p.breakers.success(rep)
}

// Fetch probes the sibling replicas for key, best-ranked first,
// returning the first valid result. False means no peer delivered one
// — for any reason — and the caller should simulate.
func (p *PeerFetcher) Fetch(ctx context.Context, key string) (experiments.RunResult, bool) {
	p.mu.RLock()
	ring, clients := p.ring, p.clients
	p.mu.RUnlock()
	for _, rep := range ring.Ranked(key) {
		if !p.usable(rep) {
			continue
		}
		pctx, cancel := ctx, context.CancelFunc(func() {})
		if p.timeout > 0 {
			pctx, cancel = context.WithTimeout(ctx, p.timeout)
		}
		out, ok, err := clients[rep].ProbeRun(pctx, key)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				// The owning request went away; stop probing on its
				// behalf.
				return experiments.RunResult{}, false
			}
			if !permanent(err) && !client.IsThrottled(err) {
				p.markDown(rep)
			}
			continue
		}
		p.markUp(rep)
		if !ok {
			continue
		}
		res := out.Result()
		if experiments.ValidatePeerResult(key, out.Key, out.Sim, res) != nil {
			// Corrupt body or a different simulator build: a miss for
			// this peer, never installed. Another peer may still hold
			// a valid artifact.
			continue
		}
		return res, true
	}
	return experiments.RunResult{}, false
}
