module samielsq

go 1.24
