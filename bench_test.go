package samielsq_test

// One benchmark per paper artefact (DESIGN.md §3): each regenerates
// the corresponding table or figure on a reduced instruction budget
// and reports the headline metric via b.ReportMetric, plus ablation
// benches for the design choices DESIGN.md calls out.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Higher-fidelity artefacts come from `go run ./cmd/samie-bench`.

import (
	"testing"

	"samielsq"
	"samielsq/internal/core"
	"samielsq/internal/experiments"
)

// benchInsts keeps the full-suite benches affordable; the harnesses
// accept larger budgets for fidelity.
const benchInsts = 60_000

// fastSuite is a representative slice of the 26 programs: the
// concentrated FP pressure cases, a streaming FP case, a pointer
// chaser and an integer case.
var fastSuite = []string{"ammp", "facerec", "swim", "mcf", "gzip"}

func BenchmarkFigure1_ARB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure1(fastSuite, benchInsts)
		// Headline: IPC retained by the 64x2 ARB (the paper quotes a
		// 28% loss).
		b.ReportMetric(f.Rows[6].RelIPC*100, "%IPC@64x2")
	}
}

func BenchmarkFigure3_SharedOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure3(fastSuite, benchInsts)
		b.ReportMetric(f.Rows[0].Occ64x2, "ammp-occ@64x2")
	}
}

func BenchmarkFigure4_SharedSizing(b *testing.B) {
	sizes := []int{0, 4, 8, 12}
	for i := 0; i < b.N; i++ {
		f := experiments.Figure4(fastSuite, benchInsts, sizes)
		b.ReportMetric(float64(f.Programs[2]), "programs@8")
	}
}

func BenchmarkFigure56_IPCAndDeadlocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figure56(fastSuite, benchInsts)
		b.ReportMetric(f.MeanIPCLossPct(), "%IPCloss")
	}
}

func BenchmarkFigures7to12_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := experiments.Energy(fastSuite, benchInsts)
		b.ReportMetric(e.LSQSavings()*100, "%LSQsaved")
		b.ReportMetric(e.DcacheSavings()*100, "%Dcachesaved")
		b.ReportMetric(e.DTLBSavings()*100, "%DTLBsaved")
		b.ReportMetric(e.AreaSavings()*100, "%areasaved")
	}
}

func BenchmarkTable1_CacheDelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1 := experiments.Table1()
		b.ReportMetric(t1.Rows[0].ModelImprovement*100, "%improv8KB2w2p")
	}
}

func BenchmarkDelays_Section36(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Delays()
		b.ReportMetric(d.Rows[2].Model, "ns-DistribLSQ")
	}
}

func BenchmarkCompareQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := samielsq.Compare("swim", benchInsts)
		b.ReportMetric(r.LSQSavingPct, "%LSQsaved")
	}
}

// ---- Ablation benches (DESIGN.md §4) ----------------------------------------

// ablate runs one SAMIE variant on the pressure benchmark and reports
// IPC and LSQ energy.
func ablate(b *testing.B, mutate func(*core.Config)) {
	cfg := core.PaperConfig()
	mutate(&cfg)
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.RunSpec{
			Benchmark: "facerec", Insts: benchInsts,
			Model: experiments.ModelSAMIE, SAMIE: &cfg,
		})
		b.ReportMetric(r.CPU.IPC, "IPC")
		b.ReportMetric(r.Meter.SAMIETotal()/1e3, "nJ-LSQ")
		b.ReportMetric(r.Meter.Dcache/1e3, "nJ-Dcache")
	}
}

func BenchmarkAblationBaselineSAMIE(b *testing.B) {
	ablate(b, func(c *core.Config) {})
}

func BenchmarkAblationNoWayCaching(b *testing.B) {
	ablate(b, func(c *core.Config) { c.DisableWayCaching = true })
}

func BenchmarkAblationNoTLBCaching(b *testing.B) {
	ablate(b, func(c *core.Config) { c.DisableTLBCaching = true })
}

func BenchmarkAblationSlots4(b *testing.B) {
	ablate(b, func(c *core.Config) { c.SlotsPerEntry = 4 })
}

func BenchmarkAblationSlots16(b *testing.B) {
	ablate(b, func(c *core.Config) { c.SlotsPerEntry = 16 })
}

func BenchmarkAblationBanks128x1(b *testing.B) {
	ablate(b, func(c *core.Config) { c.Banks, c.EntriesPerBank = 128, 1 })
}

func BenchmarkAblationBanks32x4(b *testing.B) {
	ablate(b, func(c *core.Config) { c.Banks, c.EntriesPerBank = 32, 4 })
}

func BenchmarkAblationShared16(b *testing.B) {
	ablate(b, func(c *core.Config) { c.SharedEntries = 16 })
}

func BenchmarkAblationAddrBuffer16(b *testing.B) {
	ablate(b, func(c *core.Config) { c.AddrBufferSlots = 16 })
}

// ---- Microbenchmarks of the hot simulator paths ------------------------------

func BenchmarkSimulatorThroughput(b *testing.B) {
	// Instructions simulated per second on the paper configuration.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Run(experiments.RunSpec{
			Benchmark: "gzip", Insts: 50_000, Warmup: 1,
			Model: experiments.ModelSAMIE,
		})
	}
}

func BenchmarkConventionalThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Run(experiments.RunSpec{
			Benchmark: "gzip", Insts: 50_000, Warmup: 1,
			Model: experiments.ModelConventional,
		})
	}
}

func BenchmarkExtensionFastWayKnown(b *testing.B) {
	// The paper's future-work optimization (§3.6): way-known accesses
	// complete a cycle earlier. Compare IPC against the baseline SAMIE
	// bench above.
	ablate(b, func(c *core.Config) { c.FastWayKnown = true })
}
