// Package samielsq is a from-scratch Go reproduction of
// "SAMIE-LSQ: Set-Associative Multiple-Instruction Entry Load/Store
// Queue" (Abella & González, IPDPS 2006).
//
// It bundles a cycle-level out-of-order CPU simulator, a memory
// hierarchy, branch prediction, a CACTI-3.0-style timing/energy/area
// model, the conventional and ARB baseline load/store queues, the
// SAMIE-LSQ itself, synthetic SPEC CPU2000 workload personalities, and
// one experiment harness per table and figure of the paper.
//
// Quick start:
//
//	res := samielsq.Compare("swim", 200_000)
//	fmt.Printf("IPC %.3f -> %.3f, LSQ energy saving %.0f%%\n",
//		res.Conventional.IPC, res.SAMIE.IPC, res.LSQSavingPct)
//
// The experiment harnesses regenerate the paper's evaluation:
//
//	fmt.Println(samielsq.Figure56(samielsq.Benchmarks(), 200_000))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package samielsq

import (
	"time"

	"samielsq/internal/core"
	"samielsq/internal/cpu"
	"samielsq/internal/energy"
	"samielsq/internal/experiments"
	"samielsq/internal/experiments/engine"
	"samielsq/internal/lsq"
	"samielsq/internal/trace"
)

// Re-exported configuration types.
type (
	// SAMIEConfig sizes the SAMIE-LSQ (Table 3 of the paper).
	SAMIEConfig = core.Config
	// CPUConfig is the processor configuration (Table 2).
	CPUConfig = cpu.Config
	// Personality parameterizes a synthetic workload.
	Personality = trace.Params
	// SimStats summarizes one simulation.
	SimStats = cpu.Result
	// SAMIEStats carries SAMIE-specific statistics.
	SAMIEStats = core.Stats
	// EnergyMeter accumulates per-structure dynamic energy and active
	// area.
	EnergyMeter = energy.Meter
	// LSQModel is the load/store-queue abstraction; Conventional, ARB,
	// Unbounded and SAMIE implement it.
	LSQModel = lsq.Model

	// Batch is the shared simulation engine: a memoizing scheduler that
	// keys each RunSpec canonically and executes every distinct
	// simulation exactly once per batch with a bounded worker pool.
	Batch = experiments.Batch
	// RunSpec describes one simulation for the engine.
	RunSpec = experiments.RunSpec
	// RunResult is one memoized simulation outcome.
	RunResult = experiments.RunResult
	// SuiteResult bundles every paper artefact from one shared batch.
	SuiteResult = experiments.SuiteResult
	// Scenario is a named registered sweep; see RegisterScenario.
	Scenario = experiments.Scenario
	// ScenarioVariant is one named column of a scenario sweep.
	ScenarioVariant = experiments.Variant
	// ScenarioResult is the outcome of one scenario sweep.
	ScenarioResult = experiments.ScenarioResult
	// ModelKind selects the LSQ organization of a RunSpec.
	ModelKind = experiments.ModelKind

	// EngineStats is the shared scheduler's request accounting
	// (requests, executed, hits, inflight, canceled, evictions).
	EngineStats = engine.Stats
	// DiskCacheStats counts the on-disk run cache's traffic.
	DiskCacheStats = experiments.DiskCacheStats
	// StoreStats is the tiered run store's accounting: per-tier
	// hit/miss counters (mem, disk, peer), peer installs, and the
	// peer-fetch latency histogram.
	StoreStats = experiments.StoreStats
	// TierStats is one tier's hit/miss pair within StoreStats.
	TierStats = experiments.TierStats
	// PeerStore is the tier-2 backend a Batch consults after a disk
	// miss, before simulating; cluster.NewPeerFetcher is the HTTP
	// implementation that probes sibling replicas.
	PeerStore = experiments.PeerStore
	// CachePruneStats reports what a disk-cache prune removed and kept.
	CachePruneStats = experiments.PruneStats
)

// The LSQ organizations a RunSpec can select.
const (
	ModelConventional = experiments.ModelConventional
	ModelUnbounded    = experiments.ModelUnbounded
	ModelARB          = experiments.ModelARB
	ModelSAMIE        = experiments.ModelSAMIE
)

// NewBatch returns a shared-run batch bounded to `workers` concurrent
// simulations; workers <= 0 means GOMAXPROCS.
func NewBatch(workers int) *Batch { return experiments.NewBatch(workers) }

// NewBatchWithCache is NewBatch plus an on-disk result spill: finished
// simulations are persisted to cacheDir, content-addressed by the
// canonical spec key, and reused across processes. See
// docs/performance.md ("Result persistence").
func NewBatchWithCache(workers int, cacheDir string) (*Batch, error) {
	return experiments.NewBatchWithCache(workers, cacheDir)
}

// DefaultCacheDir returns the conventional per-user on-disk run-cache
// location (<user cache dir>/samielsq).
func DefaultCacheDir() (string, error) { return experiments.DefaultCacheDir() }

// PruneCache bounds the on-disk run cache at dir: artifacts older than
// maxAge are removed, then the oldest until at most maxBytes remain
// (zero disables either bound). The cache index is rebuilt first so
// artifacts written by other processes are covered, and rewritten to
// match afterwards. Long-lived servers apply the same bounds
// periodically (samie-serve -cache-max-bytes / -cache-max-age); this
// helper serves one-shot tools (samie-bench -prune) and library users.
func PruneCache(dir string, maxBytes int64, maxAge time.Duration) (CachePruneStats, error) {
	d, err := experiments.NewDiskCache(dir)
	if err != nil {
		return CachePruneStats{}, err
	}
	if _, err := d.RebuildIndex(); err != nil {
		return CachePruneStats{}, err
	}
	return d.Prune(maxBytes, maxAge)
}

// RunSuite regenerates the paper's full evaluation — Figures 1, 3, 4,
// 5/6 and 7-12 plus the static tables — through one shared batch, so
// every distinct simulation executes exactly once across all figures.
func RunSuite(benchmarks []string, insts uint64) SuiteResult {
	return experiments.RunSuite(benchmarks, insts)
}

// SuiteSpecs enumerates the distinct simulations the full suite needs,
// deduplicated by canonical key — the shard-planning input for
// cluster-wide regeneration (see pkg/cluster).
func SuiteSpecs(benchmarks []string, insts uint64) []RunSpec {
	return experiments.SuiteSpecs(benchmarks, insts)
}

// ScenarioSpecs enumerates the distinct simulations a registered
// scenario sweep needs, plus the resolved benchmark rows.
func ScenarioSpecs(name string, benchmarks []string, insts uint64) ([]RunSpec, []string, error) {
	return experiments.ScenarioSpecs(name, benchmarks, insts)
}

// RunKey returns the canonical cache key for a spec: two specs share a
// key exactly when they describe the same simulation. It addresses
// runs everywhere — the engine memo, the disk cache, GET
// /v1/runs/{key}, and rendezvous shard placement.
func RunKey(spec RunSpec) string { return experiments.Key(spec) }

// ScenarioNames lists the registered scenario sweeps.
func ScenarioNames() []string { return experiments.ScenarioNames() }

// RegisterScenario adds a named sweep to the registry; new workloads
// are one registry entry, not a new harness.
func RegisterScenario(s Scenario) { experiments.RegisterScenario(s) }

// RunScenario evaluates a registered scenario sweep over the
// benchmarks through a fresh shared batch.
func RunScenario(name string, benchmarks []string, insts uint64) (ScenarioResult, error) {
	return experiments.RunScenario(name, benchmarks, insts)
}

// PaperSAMIEConfig returns the Table 3 SAMIE-LSQ configuration
// (64 banks x 2 entries x 8 slots, 8 SharedLSQ entries, 64 AddrBuffer
// slots).
func PaperSAMIEConfig() SAMIEConfig { return core.PaperConfig() }

// PaperCPUConfig returns the Table 2 processor configuration.
func PaperCPUConfig() CPUConfig { return cpu.PaperConfig() }

// Benchmarks returns the 26 SPEC CPU2000 workload names.
func Benchmarks() []string { return trace.Benchmarks() }

// BenchmarkPersonality returns the calibrated workload parameters for
// a benchmark name.
func BenchmarkPersonality(name string) (Personality, error) {
	return trace.Personality(name)
}

// ComparisonResult is the outcome of running one benchmark under both
// the conventional LSQ and the SAMIE-LSQ.
type ComparisonResult struct {
	Benchmark    string
	Conventional SimStats
	SAMIE        SimStats
	SAMIEDetail  SAMIEStats

	ConvMeter  *EnergyMeter
	SAMIEMeter *EnergyMeter

	// Headline numbers in the paper's terms.
	IPCLossPct      float64 // positive = SAMIE slower (paper avg: 0.6%)
	LSQSavingPct    float64 // paper avg: 82%
	DcacheSavingPct float64 // paper avg: 42%
	DTLBSavingPct   float64 // paper avg: 73%
}

// Compare runs benchmark for insts measured instructions (after an
// equal warm-up) under the paper's baseline and the SAMIE-LSQ, and
// reports the headline comparison. It executes through a fresh Batch;
// use CompareIn to share the pair of runs with other harnesses.
func Compare(benchmark string, insts uint64) ComparisonResult {
	return CompareIn(NewBatch(0), benchmark, insts)
}

// CompareIn is Compare through a caller-provided batch: the
// conventional/SAMIE pair is memoized, so a batch that has already
// produced Figure56 or the energy figures serves both runs from
// cache.
func CompareIn(b *Batch, benchmark string, insts uint64) ComparisonResult {
	conv := b.Run(experiments.RunSpec{
		Benchmark: benchmark, Insts: insts, Model: experiments.ModelConventional,
	})
	sam := b.Run(experiments.RunSpec{
		Benchmark: benchmark, Insts: insts, Model: experiments.ModelSAMIE,
	})
	res := ComparisonResult{
		Benchmark:    benchmark,
		Conventional: conv.CPU,
		SAMIE:        sam.CPU,
		SAMIEDetail:  sam.SAMIE,
		ConvMeter:    conv.Meter,
		SAMIEMeter:   sam.Meter,
	}
	if conv.CPU.IPC > 0 {
		res.IPCLossPct = (conv.CPU.IPC - sam.CPU.IPC) / conv.CPU.IPC * 100
	}
	if conv.Meter.ConvLSQ > 0 {
		res.LSQSavingPct = (1 - sam.Meter.SAMIETotal()/conv.Meter.ConvLSQ) * 100
	}
	if conv.Meter.Dcache > 0 {
		res.DcacheSavingPct = (1 - sam.Meter.Dcache/conv.Meter.Dcache) * 100
	}
	if conv.Meter.DTLB > 0 {
		res.DTLBSavingPct = (1 - sam.Meter.DTLB/conv.Meter.DTLB) * 100
	}
	return res
}

// Experiment harness re-exports: each regenerates one paper artefact
// (see DESIGN.md §3 for the index). The returned results implement
// fmt.Stringer and render the same rows/series the paper reports.

// Figure1 reproduces Figure 1 (ARB IPC vs an unbounded LSQ).
func Figure1(benchmarks []string, insts uint64) experiments.Figure1Result {
	return experiments.Figure1(benchmarks, insts)
}

// Figure3 reproduces Figure 3 (unbounded SharedLSQ occupancy).
func Figure3(benchmarks []string, insts uint64) experiments.Figure3Result {
	return experiments.Figure3(benchmarks, insts)
}

// Figure4 reproduces Figure 4 (programs vs SharedLSQ size).
func Figure4(benchmarks []string, insts uint64) experiments.Figure4Result {
	return experiments.Figure4(benchmarks, insts, nil)
}

// Figure56 reproduces Figures 5 and 6 (IPC loss and deadlock flushes).
func Figure56(benchmarks []string, insts uint64) experiments.Figure56Result {
	return experiments.Figure56(benchmarks, insts)
}

// Energy reproduces Figures 7-12 (dynamic energy and active area).
func Energy(benchmarks []string, insts uint64) experiments.EnergyResult {
	return experiments.Energy(benchmarks, insts)
}

// Table1 reproduces Table 1 (cache access times) with the analytical
// CACTI-style model.
func Table1() experiments.Table1Result { return experiments.Table1() }

// Delays reproduces the §3.6 structure-delay analysis.
func Delays() experiments.DelayResult { return experiments.Delays() }

// Tables456 renders the Table 4/5/6 energy and area constants together
// with analytical-model cross-checks.
func Tables456() string { return experiments.Tables456String() }
